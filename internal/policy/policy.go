// Package policy implements the LLC management schemes the CHROME paper
// compares against: LRU (the baseline), SRRIP (shared infrastructure),
// Hawkeye, Glider, Mockingjay, CARE, and SHiP++ (extension). Each policy
// satisfies the cache.Policy interface; CHROME itself lives in
// internal/chrome and plugs into the same interface.
package policy

import (
	"chrome/internal/cache"
	"chrome/internal/mem"
)

// invalidWay returns the first invalid way, or -1 when the set is full.
func invalidWay(blocks []cache.Block) int {
	for w := range blocks {
		if !blocks[w].Valid {
			return w
		}
	}
	return -1
}

// lruWay returns the way with the oldest LastTouch among valid ways.
func lruWay(blocks []cache.Block) int {
	best, bestTouch := 0, ^mem.Cycle(0)
	for w := range blocks {
		if blocks[w].LastTouch < bestTouch {
			best, bestTouch = w, blocks[w].LastTouch
		}
	}
	return best
}

// Signature folds a PC, a prefetch flag, and a core id into the hashed PC
// signature used by the prediction-based policies. Folding the prefetch bit
// lets a policy learn demand and prefetch behaviour of the same load
// independently (paper §IV-A); folding the core id disambiguates cores in a
// shared LLC.
func Signature(pc mem.PC, isPrefetch bool, core mem.CoreID, bits uint) uint64 {
	x := pc.Uint64()*2 + 1
	if isPrefetch {
		x ^= 0xABCD_EF01_2345_6789
	}
	x ^= core.Uint64() << 56
	return mem.FoldHash(x, bits)
}

// Sampler deterministically designates a fixed number of sampled sets and
// maps each to a dense sample index. With fewer total sets than the target,
// every set is sampled.
type Sampler struct {
	groupSize int // sets per sample group
	count     int // number of sampled sets
	// table caches Index per set (shared read-only across copies), replacing
	// the per-access Mix64 divide with one load on the hot path.
	table []int32
}

// NewSampler builds a sampler selecting `want` sets out of `sets`.
func NewSampler(sets, want int) Sampler {
	if want <= 0 {
		want = 64
	}
	s := Sampler{groupSize: 1, count: sets}
	if sets > want {
		s = Sampler{groupSize: sets / want, count: want}
	}
	s.table = make([]int32, sets)
	for i := range s.table {
		s.table[i] = int32(s.indexSlow(mem.SetIdxOf(i)))
	}
	return s
}

// Count returns the number of sampled sets.
func (s Sampler) Count() int { return s.count }

// Index returns the dense sample index of the set, or -1 if not sampled.
// Exactly one set per group is sampled, at a mixed (pseudo-random but
// deterministic) offset, so samples spread across the index space.
//
//chromevet:hot
func (s Sampler) Index(set mem.SetIdx) int {
	if si := set.Int(); si < len(s.table) {
		return int(s.table[si])
	}
	return s.indexSlow(set)
}

// indexSlow computes the sample index from the group geometry; the
// constructor tabulates it per set, and Index falls back to it only for
// sets beyond the construction geometry (or a zero-value Sampler).
func (s Sampler) indexSlow(set mem.SetIdx) int {
	si := set.Int()
	if s.groupSize == 1 {
		if si < s.count {
			return si
		}
		return -1
	}
	group := si / s.groupSize
	if group >= s.count {
		return -1
	}
	offset := int(mem.Mix64(uint64(group)*0x9e3779b9+12345) % uint64(s.groupSize))
	if si%s.groupSize == offset {
		return group
	}
	return -1
}

// ---------------------------------------------------------------------------
// LRU

// LRU is the classic least-recently-used baseline: evict the way with the
// oldest touch; never bypass.
type LRU struct{}

// NewLRU builds the LRU baseline policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements cache.Policy.
func (*LRU) Name() string { return "LRU" }

// Victim implements cache.Policy.
func (*LRU) Victim(_ mem.SetIdx, blocks []cache.Block, _ mem.Access) (int, bool) {
	if w := invalidWay(blocks); w >= 0 {
		return w, false
	}
	return lruWay(blocks), false
}

// OnHit implements cache.Policy (recency is tracked by the cache itself).
func (*LRU) OnHit(mem.SetIdx, int, []cache.Block, mem.Access) {}

// OnFill implements cache.Policy.
func (*LRU) OnFill(mem.SetIdx, int, []cache.Block, mem.Access) {}

// OnEvict implements cache.Policy.
func (*LRU) OnEvict(mem.SetIdx, int, []cache.Block) {}

// ---------------------------------------------------------------------------
// SRRIP

// SRRIP implements static re-reference interval prediction (Jaleel et al.,
// ISCA 2010) with maxRRPV=3: insert at 2, promote to 0 on hit, evict the
// first way at 3 (aging all ways until one reaches 3).
type SRRIP struct {
	rrpv    [][]uint8 //chromevet:width 2
	maxRRPV uint8     //chromevet:width 2
}

// NewSRRIP builds an SRRIP policy for the given geometry.
func NewSRRIP(sets, ways int) *SRRIP {
	p := &SRRIP{maxRRPV: 3, rrpv: make([][]uint8, sets)}
	for i := range p.rrpv {
		p.rrpv[i] = make([]uint8, ways)
	}
	return p
}

// Name implements cache.Policy.
func (*SRRIP) Name() string { return "SRRIP" }

// Victim implements cache.Policy.
func (p *SRRIP) Victim(set mem.SetIdx, blocks []cache.Block, _ mem.Access) (int, bool) {
	if w := invalidWay(blocks); w >= 0 {
		return w, false
	}
	r := p.rrpv[set]
	for {
		for w := range r {
			if r[w] >= p.maxRRPV {
				return w, false
			}
		}
		for w := range r {
			//chromevet:allow hwwidth -- the scan above returned if any way was at maxRRPV, so every way is below the ceiling and the increment saturates in width
			r[w]++
		}
	}
}

// OnHit implements cache.Policy.
func (p *SRRIP) OnHit(set mem.SetIdx, way int, _ []cache.Block, _ mem.Access) {
	p.rrpv[set][way] = 0
}

// OnFill implements cache.Policy.
func (p *SRRIP) OnFill(set mem.SetIdx, way int, _ []cache.Block, _ mem.Access) {
	p.rrpv[set][way] = p.maxRRPV - 1
}

// OnEvict implements cache.Policy.
func (*SRRIP) OnEvict(mem.SetIdx, int, []cache.Block) {}
