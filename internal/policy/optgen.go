package policy

import "chrome/internal/mem"

// optGen simulates Belady's OPT decision for one sampled cache set
// (Jain & Lin, ISCA 2016). Time is quantized to one quantum per access to
// the set. For each re-access within the usage window, OPT would have hit
// iff every quantum of the usage interval had residual cache capacity; on
// such a hit the interval's occupancy is incremented.
type optGen struct {
	capacity  int      // number of ways
	window    int      // usage-interval window in quanta (8 * ways)
	occupancy []uint8  // ring buffer of per-quantum occupancy
	clock     uint64   // quanta elapsed (accesses to this set)
	history   []optRef // bounded last-access records for this set
}

// optRef records the previous access to a block in a sampled set together
// with the training context of that access.
type optRef struct {
	block mem.BlockAddr // block number
	time  uint64        // quantum of the access
	sig   uint64        // predictor signature of the accessing instruction
	// ctx carries policy-specific training context (Glider's ISVM weight
	// indices); unused by Hawkeye.
	ctx [pchrDepth]uint16
}

// newOptGen builds an OPT simulator for one set of the given associativity.
func newOptGen(ways int) *optGen {
	w := 8 * ways
	return &optGen{
		capacity:  ways,
		window:    w,
		occupancy: make([]uint8, w),
		history:   make([]optRef, 0, w),
	}
}

// optLabel is the training outcome of one OPT decision.
type optLabel int8

const (
	optNone optLabel = iota // no previous access in window; no label
	optHit                  // OPT would have cached the block (train positive)
	optMiss                 // OPT would have evicted it (train negative)
)

// Access advances the OPT simulation with an access to block. It returns
// the label for the *previous* access to the block (the one whose caching
// decision is now adjudicated) together with that access's signature and
// context. The current access is then recorded with sig/ctx for future
// adjudication.
//
//chromevet:hot
func (g *optGen) Access(block mem.BlockAddr, sig uint64, ctx [pchrDepth]uint16) (optLabel, uint64, [pchrDepth]uint16) {
	now := g.clock
	g.clock++
	// The slot for the new quantum starts empty.
	g.occupancy[now%uint64(g.window)] = 0

	label := optNone
	var prevSig uint64
	var prevCtx [pchrDepth]uint16

	// Find and remove the previous reference to this block.
	for i := range g.history {
		if g.history[i].block == block {
			prev := g.history[i]
			g.history = append(g.history[:i], g.history[i+1:]...) //chromevet:allow hotalloc -- in-place removal: result is shorter than the input slice, never grows
			prevSig, prevCtx = prev.sig, prev.ctx
			if now-prev.time < uint64(g.window) {
				if g.intervalFits(prev.time, now) {
					g.fillInterval(prev.time, now)
					label = optHit
				} else {
					label = optMiss
				}
			}
			break
		}
	}

	// Record the current access, bounding the history to the window size.
	// Copy down rather than re-slicing history[1:]: front-slicing strands
	// the capacity newOptGen preallocated and the append below would then
	// reallocate once per window.
	if len(g.history) >= g.window {
		copy(g.history, g.history[1:])
		g.history = g.history[:len(g.history)-1]
	}
	g.history = append(g.history, optRef{block: block, time: now, sig: sig, ctx: ctx}) //chromevet:allow hotalloc -- len < window here and cap is pre-sized to window in newOptGen
	return label, prevSig, prevCtx
}

// intervalFits reports whether every quantum in [from, to) has residual
// capacity.
func (g *optGen) intervalFits(from, to uint64) bool {
	for t := from; t < to; t++ {
		if int(g.occupancy[t%uint64(g.window)]) >= g.capacity {
			return false
		}
	}
	return true
}

// fillInterval increments occupancy over [from, to).
func (g *optGen) fillInterval(from, to uint64) {
	for t := from; t < to; t++ {
		g.occupancy[t%uint64(g.window)]++
	}
}
