package policy_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"strings"
	"testing"

	"chrome/internal/experiments"
	"chrome/internal/mem"
)

// standard LLC geometry for constructibility checks (Table V: 2MB/core,
// 16-way, 64B blocks, 4 cores).
const (
	stdSets  = 2048
	stdWays  = 16
	stdCores = 4
)

// policyConstructors parses the policy package source and returns the
// exported New<Type> constructors whose result type implements
// cache.Policy, judged by declared method sets (Name, Victim, OnHit,
// OnFill, OnEvict on T or *T).
func policyConstructors(t *testing.T) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["policy"]
	if !ok {
		t.Fatalf("package policy not found in .; got %v", pkgs)
	}

	methods := map[string]map[string]bool{} // receiver type -> method names
	type ctor struct{ fn, result string }
	var ctors []ctor
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				if recv := typeName(fd.Recv.List[0].Type); recv != "" {
					if methods[recv] == nil {
						methods[recv] = map[string]bool{}
					}
					methods[recv][fd.Name.Name] = true
				}
				continue
			}
			if !strings.HasPrefix(fd.Name.Name, "New") || !fd.Name.IsExported() {
				continue
			}
			if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
				continue
			}
			if res := typeName(fd.Type.Results.List[0].Type); res != "" {
				ctors = append(ctors, ctor{fn: fd.Name.Name, result: res})
			}
		}
	}

	required := []string{"Name", "Victim", "OnHit", "OnFill", "OnEvict"}
	out := map[string]bool{}
	for _, c := range ctors {
		isPolicy := true
		for _, m := range required {
			if !methods[c.result][m] {
				isPolicy = false
				break
			}
		}
		if isPolicy {
			out[c.fn] = true
		}
	}
	return out
}

// typeName unwraps *T / T to the bare identifier.
func typeName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// TestRegistryComplete holds the experiments scheme registry and the policy
// package's exported constructors to each other: every policy constructor
// must be reachable from AllSchemes (else it silently drops out of every
// comparison figure), and every scheme constructing a policy-package type
// must go through an exported constructor.
func TestRegistryComplete(t *testing.T) {
	ctors := policyConstructors(t)
	if len(ctors) < 8 {
		t.Fatalf("constructor scan looks broken: found only %v", ctors)
	}

	constructed := map[string]bool{} // concrete policy type names from schemes
	for _, s := range experiments.AllSchemes() {
		p := s.Factory(stdSets, stdWays, stdCores, func(mem.CoreID) bool { return false })
		if p == nil {
			t.Fatalf("scheme %s constructed a nil policy", s.Name)
		}
		rt := reflect.TypeOf(p)
		for rt.Kind() == reflect.Pointer {
			rt = rt.Elem()
		}
		if rt.PkgPath() != "chrome/internal/policy" {
			continue // e.g. CHROME's chrome.Agent lives elsewhere
		}
		constructed[rt.Name()] = true
	}

	for fn := range ctors {
		typ := strings.TrimPrefix(fn, "New")
		if !constructed[typ] {
			t.Errorf("exported constructor %s has no scheme in experiments.AllSchemes; the policy is unreachable from the experiment registry", fn)
		}
	}
	for typ := range constructed {
		if !ctors["New"+typ] {
			t.Errorf("scheme constructs policy.%s but the package exports no New%s constructor", typ, typ)
		}
	}
}

// TestSchemesConstructibleAtStandardGeometry checks each registered scheme
// builds and answers a Name() at the Table V geometry, for several core
// counts.
func TestSchemesConstructibleAtStandardGeometry(t *testing.T) {
	for _, cores := range []int{1, 4, 8, 16} {
		for _, s := range experiments.AllSchemes() {
			p := s.Factory(stdSets, stdWays, cores, func(mem.CoreID) bool { return false })
			if p == nil {
				t.Fatalf("scheme %s (cores=%d): nil policy", s.Name, cores)
			}
			if p.Name() == "" {
				t.Errorf("scheme %s (cores=%d): empty policy name", s.Name, cores)
			}
		}
	}
}
