package policy

import (
	"chrome/internal/cache"
	"chrome/internal/mem"
)

// Mockingjay implements the mechanism of Mockingjay (Shah, Jain & Lin, HPCA
// 2022): fine-grained reuse-distance prediction per PC signature trained by
// a sampled cache, estimated-time-remaining (ETR) eviction, integrated
// bypassing for blocks predicted to reuse beyond the cache's reach, and
// prefetch-aware signatures. Its policies are statically parameterized
// (fixed thresholds), which is the adaptability limitation the CHROME paper
// demonstrates in §III-B.
type Mockingjay struct {
	sampler Sampler
	// Per-sampled-set reuse-distance measurement history.
	samples [][]mjSample
	// rdp maps signature -> predicted reuse distance (set-access quanta).
	// Predictions are clamped to maxRD = 16*ways <= 4096 for any
	// modeled associativity (ways <= 256).
	rdp []uint16 //chromevet:width 13

	// Per-set access clock (quanta) and per-line predicted next-use time.
	clock   []uint64
	nextUse [][]uint64

	ways       int
	maxRD      uint16 // "infinite" reuse distance
	bypassRD   uint16 // demand bypass threshold
	bypassRDPF uint16 // prefetch bypass threshold (more aggressive)
}

type mjSample struct {
	block mem.BlockAddr
	sig   uint64
	time  uint64
}

const mjTableBits = 12 // 4K RDP entries

// NewMockingjay builds a Mockingjay policy for the given LLC geometry.
func NewMockingjay(sets, ways, sampled int) *Mockingjay {
	window := uint16(8 * ways)
	m := &Mockingjay{
		sampler:    NewSampler(sets, sampled),
		rdp:        make([]uint16, 1<<mjTableBits),
		clock:      make([]uint64, sets),
		nextUse:    make([][]uint64, sets),
		ways:       ways,
		maxRD:      window * 2,
		bypassRD:   window * 2, // demands bypass only at "infinite" RD
		bypassRDPF: window,     // prefetches bypass at the window edge
	}
	m.samples = make([][]mjSample, m.sampler.Count())
	for i := range m.samples {
		// Pre-size each sampled-set history to its 8*ways bound so train()
		// never grows it on the per-access path.
		m.samples[i] = make([]mjSample, 0, 8*ways)
	}
	for s := 0; s < sets; s++ {
		m.nextUse[s] = make([]uint64, ways)
	}
	return m
}

// Name implements cache.Policy.
func (*Mockingjay) Name() string { return "Mockingjay" }

func (m *Mockingjay) sig(acc mem.Access) uint64 {
	return Signature(acc.PC, acc.IsPrefetch(), acc.Core, mjTableBits)
}

// train measures reuse distances on sampled sets and updates the RDP with
// a temporal-difference step toward each new sample.
//
//chromevet:hot
func (m *Mockingjay) train(set mem.SetIdx, acc mem.Access) {
	si := m.sampler.Index(set)
	if si < 0 {
		return
	}
	now := m.clock[set]
	block := acc.Addr.Block()
	hist := m.samples[si]
	window := uint64(8 * m.ways)
	for i := range hist {
		if hist[i].block == block {
			rd := now - hist[i].time
			if rd > uint64(m.maxRD) {
				rd = uint64(m.maxRD)
			}
			m.update(hist[i].sig, uint16(rd)) //chromevet:allow narrowing -- clamped to maxRD above
			hist[i] = mjSample{block: block, sig: m.sig(acc), time: now}
			return
		}
	}
	// Age out samples beyond the window: their blocks were not reused in
	// time, so train their signatures toward the infinite distance.
	kept := hist[:0]
	for _, s := range hist {
		if now-s.time > window {
			m.update(s.sig, m.maxRD)
			continue
		}
		kept = append(kept, s)
	}
	hist = kept
	if len(hist) >= 8*m.ways {
		m.update(hist[0].sig, m.maxRD)
		// Copy down instead of re-slicing hist[1:]: front-slicing strands
		// capacity and makes the append below reallocate periodically.
		copy(hist, hist[1:])
		hist = hist[:len(hist)-1]
	}
	m.samples[si] = append(hist, mjSample{block: block, sig: m.sig(acc), time: now}) //chromevet:allow hotalloc -- len < 8*ways here and cap is pre-sized to 8*ways in NewMockingjay
}

// update moves the prediction for sig an eighth of the way to the sample.
func (m *Mockingjay) update(sig uint64, sample uint16) {
	cur := m.rdp[sig]
	if cur == 0 {
		m.rdp[sig] = sample //chromevet:allow hwwidth -- every caller clamps sample to maxRD <= 4096
		return
	}
	m.rdp[sig] = uint16(int(cur) + (int(sample)-int(cur))/8) //chromevet:allow hwwidth -- the TD step lands between cur and sample, both within width
}

// predictRD returns the predicted reuse distance for the access. Unseen
// signatures predict a middle distance so they are cached but replaceable.
func (m *Mockingjay) predictRD(acc mem.Access) uint16 {
	rd := m.rdp[m.sig(acc)]
	if rd == 0 {
		return uint16(2 * m.ways)
	}
	return rd
}

// Victim implements cache.Policy: bypass blocks predicted to reuse beyond
// the threshold; otherwise evict the line with the latest predicted next
// use (largest estimated time remaining).
//
//chromevet:hot
func (m *Mockingjay) Victim(set mem.SetIdx, blocks []cache.Block, acc mem.Access) (int, bool) {
	m.train(set, acc)
	m.clock[set]++
	rd := m.predictRD(acc)
	threshold := m.bypassRD
	if acc.IsPrefetch() {
		threshold = m.bypassRDPF
	}
	if rd >= threshold {
		return 0, true
	}
	if w := invalidWay(blocks); w >= 0 {
		return w, false
	}
	// Victim: overdue lines (negative ETR — their predicted reuse already
	// passed, so they are predicted dead) are evicted first, most-overdue
	// first; with no overdue line, the line whose next use is farthest in
	// the future goes. Ranking overdue above far-future matters when RD
	// predictions are uniform: plain max-|ETR| would evict the most
	// recently refreshed line (anti-recency).
	// Future ETRs are compared at coarse granularity with recency breaking
	// ties, so lines with indistinguishable predictions fall back to
	// LRU-like behaviour instead of following prediction noise.
	now := int64(m.clock[set])
	const overdueBias = int64(1) << 32
	best, bestKey, bestTouch := 0, int64(-1), ^mem.Cycle(0)
	var bestETR int64
	for w := range blocks {
		etr := int64(m.nextUse[set][w]) - now
		key := etr / int64(m.ways)
		if etr < 0 {
			key = overdueBias - etr
		}
		touch := blocks[w].LastTouch
		if key > bestKey || (key == bestKey && touch < bestTouch) {
			best, bestKey, bestTouch, bestETR = w, key, touch, etr
		}
	}
	// If the incoming block's predicted reuse is clearly later than the
	// victim's remaining time, caching it would only displace more useful
	// data: bypass. (Overdue victims are simply replaced.) The grace margin
	// absorbs the prediction noise of signatures that mix short- and
	// long-reuse blocks.
	if bestETR > 0 && int64(rd) > bestETR+int64(4*m.ways) {
		return 0, true
	}
	return best, false
}

// OnHit implements cache.Policy.
//
//chromevet:hot
func (m *Mockingjay) OnHit(set mem.SetIdx, way int, _ []cache.Block, acc mem.Access) {
	m.train(set, acc)
	m.clock[set]++
	m.nextUse[set][way] = m.clock[set] + uint64(m.predictRD(acc))
}

// OnFill implements cache.Policy.
//
//chromevet:hot
func (m *Mockingjay) OnFill(set mem.SetIdx, way int, _ []cache.Block, acc mem.Access) {
	m.nextUse[set][way] = m.clock[set] + uint64(m.predictRD(acc))
}

// OnEvict implements cache.Policy.
func (m *Mockingjay) OnEvict(set mem.SetIdx, way int, _ []cache.Block) {
	m.nextUse[set][way] = 0
}
