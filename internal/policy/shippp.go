package policy

import (
	"chrome/internal/cache"
	"chrome/internal/mem"
)

// SHiPPP implements SHiP++ (Young et al., CRC-2 2017): SHiP's
// signature-based hit prediction refined with first-re-reference-only
// training and prefetch-aware insertion. Included as an extension baseline
// (paper §VIII discusses it as related work).
type SHiPPP struct {
	sampler Sampler
	// shct holds 3-bit saturating signature hit counters.
	shct      []uint8   //chromevet:width 3
	maxRRPV   uint8     //chromevet:width 2
	rrpv      [][]uint8 //chromevet:width 2
	lineSig   [][]uint64
	lineReref [][]bool
	sampled   []bool
}

const shipTableBits = 14

// NewSHiPPP builds a SHiP++ policy for the given LLC geometry.
func NewSHiPPP(sets, ways, sampled int) *SHiPPP {
	p := &SHiPPP{
		sampler:   NewSampler(sets, sampled),
		shct:      make([]uint8, 1<<shipTableBits),
		maxRRPV:   3,
		rrpv:      make([][]uint8, sets),
		lineSig:   make([][]uint64, sets),
		lineReref: make([][]bool, sets),
		sampled:   make([]bool, sets),
	}
	for i := range p.shct {
		p.shct[i] = 2
	}
	for s := 0; s < sets; s++ {
		p.rrpv[s] = make([]uint8, ways)
		p.lineSig[s] = make([]uint64, ways)
		p.lineReref[s] = make([]bool, ways)
		p.sampled[s] = p.sampler.Index(mem.SetIdxOf(s)) >= 0
	}
	return p
}

// Name implements cache.Policy.
func (*SHiPPP) Name() string { return "SHiP++" }

func (p *SHiPPP) sig(acc mem.Access) uint64 {
	return Signature(acc.PC, acc.IsPrefetch(), acc.Core, shipTableBits)
}

// Victim implements cache.Policy.
func (p *SHiPPP) Victim(set mem.SetIdx, blocks []cache.Block, _ mem.Access) (int, bool) {
	if w := invalidWay(blocks); w >= 0 {
		return w, false
	}
	r := p.rrpv[set]
	for {
		for w := range r {
			if r[w] >= p.maxRRPV {
				return w, false
			}
		}
		for w := range r {
			//chromevet:allow hwwidth -- the scan above returned if any way was at maxRRPV, so every way is below the ceiling and the increment saturates in width
			r[w]++
		}
	}
}

// OnHit implements cache.Policy: SHiP++ trains only on the first
// re-reference and promotes demand hits to MRU.
func (p *SHiPPP) OnHit(set mem.SetIdx, way int, _ []cache.Block, acc mem.Access) {
	if p.sampled[set] && !p.lineReref[set][way] {
		p.lineReref[set][way] = true
		s := p.lineSig[set][way]
		if p.shct[s] < 7 {
			p.shct[s]++
		}
	}
	if acc.IsPrefetch() {
		// Prefetch hits do not promote (they carry no demand-reuse signal).
		return
	}
	p.rrpv[set][way] = 0
}

// OnFill implements cache.Policy: prefetch fills insert at distant RRPV
// unless their signature is strongly predicted to be reused.
func (p *SHiPPP) OnFill(set mem.SetIdx, way int, _ []cache.Block, acc mem.Access) {
	s := p.sig(acc)
	var r uint8
	switch {
	case p.shct[s] == 0:
		r = p.maxRRPV
	case acc.IsPrefetch() && p.shct[s] < 6:
		r = p.maxRRPV
	case p.shct[s] >= 6:
		r = 0
	default:
		r = p.maxRRPV - 1
	}
	p.rrpv[set][way] = r //chromevet:allow hwwidth -- r is one of {0, maxRRPV-1, maxRRPV} per the switch above, all within 2 bits
	p.lineSig[set][way] = s
	p.lineReref[set][way] = false
}

// OnEvict implements cache.Policy.
func (p *SHiPPP) OnEvict(set mem.SetIdx, way int, _ []cache.Block) {
	if p.sampled[set] && !p.lineReref[set][way] {
		s := p.lineSig[set][way]
		if p.shct[s] > 0 {
			p.shct[s]--
		}
	}
	p.rrpv[set][way] = p.maxRRPV
	p.lineReref[set][way] = false
	p.lineSig[set][way] = 0
}
