package policy

// Checkpoint support for every LLC policy (DESIGN.md §10). Each policy
// serializes only its mutable learned/metadata state; geometry, samplers,
// leader-set layouts, and thresholds are construction-deterministic and are
// validated by length checks rather than stored. Restores happen in place
// into an identically constructed policy, so wired callbacks (CARE's
// Obstructed) survive.

import (
	"fmt"

	"chrome/internal/mem"
	"chrome/internal/state"
)

// loadPsel restores a set-dueling selector counter, rejecting values outside
// the duel range [0, max] as corruption.
func loadPsel(dec *state.Dec, what string, max int) (int, error) {
	v := dec.Int()
	if dec.Err() != nil {
		return 0, dec.Err()
	}
	if v < 0 || v > max {
		return 0, fmt.Errorf("%w: %s selector %d outside [0, %d]", state.ErrCorrupt, what, v, max)
	}
	return v, nil
}

// Grid helpers for the per-set × per-way metadata shapes shared by the RRIP
// family. Row lengths are fixed by construction, so only a total-shape check
// is needed.

func saveU8Grid(enc *state.Enc, g [][]uint8) {
	enc.Int(len(g))
	for _, row := range g {
		enc.Int(len(row))
		for _, v := range row {
			enc.U8(v)
		}
	}
}

func loadU8Grid(dec *state.Dec, what string, g [][]uint8) {
	if !dec.ExpectLen(what+" sets", dec.Int(), len(g)) {
		return
	}
	for s, row := range g {
		if !dec.ExpectLen(what+" ways", dec.Int(), len(row)) {
			return
		}
		for w := range row {
			g[s][w] = dec.U8()
		}
	}
}

func saveBoolGrid(enc *state.Enc, g [][]bool) {
	enc.Int(len(g))
	for _, row := range g {
		enc.Int(len(row))
		for _, v := range row {
			enc.Bool(v)
		}
	}
}

func loadBoolGrid(dec *state.Dec, what string, g [][]bool) {
	if !dec.ExpectLen(what+" sets", dec.Int(), len(g)) {
		return
	}
	for s, row := range g {
		if !dec.ExpectLen(what+" ways", dec.Int(), len(row)) {
			return
		}
		for w := range row {
			g[s][w] = dec.Bool()
		}
	}
}

func saveU64Grid(enc *state.Enc, g [][]uint64) {
	enc.Int(len(g))
	for _, row := range g {
		enc.Int(len(row))
		for _, v := range row {
			enc.U64(v)
		}
	}
}

func loadU64Grid(dec *state.Dec, what string, g [][]uint64) {
	if !dec.ExpectLen(what+" sets", dec.Int(), len(g)) {
		return
	}
	for s, row := range g {
		if !dec.ExpectLen(what+" ways", dec.Int(), len(row)) {
			return
		}
		for w := range row {
			g[s][w] = dec.U64()
		}
	}
}

func saveU8s(enc *state.Enc, v []uint8) {
	enc.Int(len(v))
	for _, x := range v {
		enc.U8(x)
	}
}

func loadU8s(dec *state.Dec, what string, v []uint8) {
	if !dec.ExpectLen(what, dec.Int(), len(v)) {
		return
	}
	for i := range v {
		v[i] = dec.U8()
	}
}

// ---------------------------------------------------------------------------
// Stateless / RRIP family

// SaveState implements cache.Checkpointable (LRU keeps no policy state; the
// cache's LastTouch recency is saved with the blocks).
func (*LRU) SaveState(*state.Enc) error { return nil }

// LoadState implements cache.Checkpointable.
func (*LRU) LoadState(*state.Dec) error { return nil }

// SaveState implements cache.Checkpointable.
func (p *SRRIP) SaveState(enc *state.Enc) error {
	saveU8Grid(enc, p.rrpv)
	return nil
}

// LoadState implements cache.Checkpointable.
func (p *SRRIP) LoadState(dec *state.Dec) error {
	loadU8Grid(dec, "SRRIP rrpv", p.rrpv)
	return dec.Err()
}

// SaveState implements cache.Checkpointable (leader sets and pselMax are
// construction-deterministic).
func (d *DRRIP) SaveState(enc *state.Enc) error {
	saveU8Grid(enc, d.rrpv)
	enc.Int(d.psel)
	enc.U32(d.brripCtr)
	return nil
}

// LoadState implements cache.Checkpointable.
func (d *DRRIP) LoadState(dec *state.Dec) error {
	loadU8Grid(dec, "DRRIP rrpv", d.rrpv)
	v, err := loadPsel(dec, "DRRIP", d.pselMax)
	if err != nil {
		return err
	}
	d.psel = v //chromevet:allow hwwidth -- range-checked against pselMax by loadPsel
	d.brripCtr = dec.U32()
	return dec.Err()
}

// SaveState implements cache.Checkpointable.
func (p *PACMan) SaveState(enc *state.Enc) error {
	saveU8Grid(enc, p.rrpv)
	enc.Int(p.psel)
	return nil
}

// LoadState implements cache.Checkpointable.
func (p *PACMan) LoadState(dec *state.Dec) error {
	loadU8Grid(dec, "PACMan rrpv", p.rrpv)
	v, err := loadPsel(dec, "PACMan", p.pselMax)
	if err != nil {
		return err
	}
	p.psel = v //chromevet:allow hwwidth -- range-checked against pselMax by loadPsel
	return dec.Err()
}

// ---------------------------------------------------------------------------
// Signature-history family (SHiP++, CARE)

// SaveState implements cache.Checkpointable.
func (p *SHiPPP) SaveState(enc *state.Enc) error {
	saveU8s(enc, p.shct)
	saveU8Grid(enc, p.rrpv)
	saveU64Grid(enc, p.lineSig)
	saveBoolGrid(enc, p.lineReref)
	return nil
}

// LoadState implements cache.Checkpointable.
func (p *SHiPPP) LoadState(dec *state.Dec) error {
	loadU8s(dec, "SHiP++ shct", p.shct)
	loadU8Grid(dec, "SHiP++ rrpv", p.rrpv)
	loadU64Grid(dec, "SHiP++ lineSig", p.lineSig)
	loadBoolGrid(dec, "SHiP++ lineReref", p.lineReref)
	return dec.Err()
}

// SaveState implements cache.Checkpointable (the Obstructed wiring is left
// untouched by restore).
func (c *CARE) SaveState(enc *state.Enc) error {
	saveU8s(enc, c.shct)
	saveU8Grid(enc, c.rrpv)
	saveU64Grid(enc, c.lineSig)
	saveBoolGrid(enc, c.lineReref)
	return nil
}

// LoadState implements cache.Checkpointable.
func (c *CARE) LoadState(dec *state.Dec) error {
	loadU8s(dec, "CARE shct", c.shct)
	loadU8Grid(dec, "CARE rrpv", c.rrpv)
	loadU64Grid(dec, "CARE lineSig", c.lineSig)
	loadBoolGrid(dec, "CARE lineReref", c.lineReref)
	return dec.Err()
}

// ---------------------------------------------------------------------------
// OPT-trained family (Hawkeye, Glider)

func (g *optGen) saveState(enc *state.Enc) {
	saveU8s(enc, g.occupancy)
	enc.U64(g.clock)
	enc.Int(len(g.history))
	for i := range g.history {
		r := &g.history[i]
		enc.U64(r.block.Uint64())
		enc.U64(r.time)
		enc.U64(r.sig)
		for _, c := range r.ctx {
			enc.U16(c)
		}
	}
}

func (g *optGen) loadState(dec *state.Dec) {
	loadU8s(dec, "optgen occupancy", g.occupancy)
	g.clock = dec.U64()
	n := dec.Int()
	if dec.Err() != nil {
		return
	}
	if n < 0 || n > g.window {
		dec.ExpectLen("optgen history", n, g.window)
		return
	}
	g.history = g.history[:0]
	for i := 0; i < n; i++ {
		var r optRef
		r.block = mem.BlockAddrOf(dec.U64())
		r.time = dec.U64()
		r.sig = dec.U64()
		for c := range r.ctx {
			r.ctx[c] = dec.U16()
		}
		g.history = append(g.history, r)
	}
}

func saveOptGens(enc *state.Enc, gens []*optGen) {
	enc.Int(len(gens))
	for _, g := range gens {
		g.saveState(enc)
	}
}

func loadOptGens(dec *state.Dec, what string, gens []*optGen) {
	if !dec.ExpectLen(what, dec.Int(), len(gens)) {
		return
	}
	for _, g := range gens {
		g.loadState(dec)
	}
}

// SaveState implements cache.Checkpointable.
func (h *Hawkeye) SaveState(enc *state.Enc) error {
	saveU8s(enc, h.counters)
	saveU8Grid(enc, h.rrpv)
	saveBoolGrid(enc, h.friendly)
	saveU64Grid(enc, h.lineSig)
	saveOptGens(enc, h.optgens)
	return nil
}

// LoadState implements cache.Checkpointable.
func (h *Hawkeye) LoadState(dec *state.Dec) error {
	loadU8s(dec, "Hawkeye counters", h.counters)
	loadU8Grid(dec, "Hawkeye rrpv", h.rrpv)
	loadBoolGrid(dec, "Hawkeye friendly", h.friendly)
	loadU64Grid(dec, "Hawkeye lineSig", h.lineSig)
	loadOptGens(dec, "Hawkeye optgens", h.optgens)
	return dec.Err()
}

// SaveState implements cache.Checkpointable. ISVM rows allocate lazily on
// first touch, so each row is saved behind a presence flag and restored to
// exactly the trained-row set (an absent row must stay nil to preserve the
// untrained-PC fast path).
func (g *Glider) SaveState(enc *state.Enc) error {
	enc.Int(len(g.isvm))
	for _, row := range g.isvm {
		if row == nil {
			enc.Bool(false)
			continue
		}
		enc.Bool(true)
		enc.Int(len(row))
		for _, w := range row {
			enc.I16(w)
		}
	}
	enc.Int(len(g.pchr))
	for i := range g.pchr {
		for _, v := range g.pchr[i] {
			enc.U16(v)
		}
	}
	saveU8Grid(enc, g.rrpv)
	saveBoolGrid(enc, g.averse)
	for _, v := range g.pendingF {
		enc.U16(v)
	}
	enc.Bool(g.pendingValid)
	saveOptGens(enc, g.optgens)
	return nil
}

// LoadState implements cache.Checkpointable.
func (g *Glider) LoadState(dec *state.Dec) error {
	if !dec.ExpectLen("Glider isvm", dec.Int(), len(g.isvm)) {
		return dec.Err()
	}
	for i := range g.isvm {
		if !dec.Bool() {
			g.isvm[i] = nil
			continue
		}
		n := dec.Int()
		if !dec.ExpectLen("Glider isvm row", n, isvmWeights) {
			return dec.Err()
		}
		row := g.isvm[i]
		if row == nil {
			row = make([]int16, isvmWeights)
			g.isvm[i] = row
		}
		for w := range row {
			row[w] = dec.I16()
		}
	}
	if !dec.ExpectLen("Glider pchr", dec.Int(), len(g.pchr)) {
		return dec.Err()
	}
	for i := range g.pchr {
		for j := range g.pchr[i] {
			g.pchr[i][j] = dec.U16()
		}
	}
	loadU8Grid(dec, "Glider rrpv", g.rrpv)
	loadBoolGrid(dec, "Glider averse", g.averse)
	for i := range g.pendingF {
		g.pendingF[i] = dec.U16()
	}
	g.pendingValid = dec.Bool()
	loadOptGens(dec, "Glider optgens", g.optgens)
	return dec.Err()
}

// ---------------------------------------------------------------------------
// Mockingjay

// SaveState implements cache.Checkpointable.
func (m *Mockingjay) SaveState(enc *state.Enc) error {
	enc.Int(len(m.samples))
	for _, hist := range m.samples {
		enc.Int(len(hist))
		for i := range hist {
			enc.U64(hist[i].block.Uint64())
			enc.U64(hist[i].sig)
			enc.U64(hist[i].time)
		}
	}
	enc.Int(len(m.rdp))
	for _, v := range m.rdp {
		enc.U16(v)
	}
	enc.Int(len(m.clock))
	for _, v := range m.clock {
		enc.U64(v)
	}
	saveU64Grid(enc, m.nextUse)
	return nil
}

// LoadState implements cache.Checkpointable.
func (m *Mockingjay) LoadState(dec *state.Dec) error {
	if !dec.ExpectLen("Mockingjay samples", dec.Int(), len(m.samples)) {
		return dec.Err()
	}
	for q := range m.samples {
		n := dec.Int()
		if dec.Err() != nil {
			return dec.Err()
		}
		if n < 0 || n > cap(m.samples[q]) {
			dec.ExpectLen("Mockingjay sample history", n, cap(m.samples[q]))
			return dec.Err()
		}
		hist := m.samples[q][:0]
		for i := 0; i < n; i++ {
			var s mjSample
			s.block = mem.BlockAddrOf(dec.U64())
			s.sig = dec.U64()
			s.time = dec.U64()
			hist = append(hist, s)
		}
		m.samples[q] = hist
	}
	if !dec.ExpectLen("Mockingjay rdp", dec.Int(), len(m.rdp)) {
		return dec.Err()
	}
	for i := range m.rdp {
		m.rdp[i] = dec.U16() & 0x1fff
	}
	if !dec.ExpectLen("Mockingjay clock", dec.Int(), len(m.clock)) {
		return dec.Err()
	}
	for i := range m.clock {
		m.clock[i] = dec.U64()
	}
	loadU64Grid(dec, "Mockingjay nextUse", m.nextUse)
	return dec.Err()
}
